// X8: barrier-free asynchronous iteration vs barrier-synchronous execution
// under progressively nastier transports. Runs both async-capable stencils
// (jacobi-async, sor-async) to CONVERGENCE in four execution modes -- the
// home-based barrier protocols bar-u / bar-i under the synchronous gang,
// and the stale-tolerant async-u / async-i under --gang=async -- across
// four fault severities (none, light loss, a hard per-step straggler, and
// churn: batch-targeted loss + dups + delays). Every cell must converge to
// the solver tolerance; the summary reports where asynchrony wins, which
// by the paper's argument should be exactly the straggler columns (a
// barrier run pays every stall at every barrier; an async run lets the
// straggler fall behind and heals with stale-tolerant reads).
// Emits BENCH_async.json for perf-trajectory tracking.
//
// Deterministic by construction: virtual-time results depend only on
// (workload, config, --fault-seed), never on --jobs or --workers or wall
// clock; the bench_async_determinism ctest pins byte-identical output.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace updsm;

struct Mode {
  const char* label;       // column label
  protocols::ProtocolKind kind;
  sim::GangMode gang;
};

constexpr Mode kModes[] = {
    {"bar-u/sync", protocols::ProtocolKind::BarU, sim::GangMode::Parallel},
    {"bar-i/sync", protocols::ProtocolKind::BarI, sim::GangMode::Parallel},
    {"async-u", protocols::ProtocolKind::AsyncU, sim::GangMode::Async},
    {"async-i", protocols::ProtocolKind::AsyncI, sim::GangMode::Async},
};

struct Severity {
  const char* label;
  const char* plan;  // empty = fault-free
};

constexpr Severity kSeverities[] = {
    {"none", ""},
    {"light", "drop=0.05"},
    {"straggler", "node=1,stall=0.5,stall_us=3000;drop=0.1"},
    {"churn", "kind=flushbatch,drop=0.4;drop=0.1,dup=0.05,delay=0.1,"
              "delay_us=300"},
};

constexpr const char* kApps[] = {"jacobi-async", "sor-async"};

struct Cell {
  const char* app;
  const Mode* mode;
  const Severity* severity;
};

}  // namespace

int main(int argc, char** argv) {
  // --fault-seed is this bench's own knob; everything else is shared. The
  // gang mode is part of each cell, so a user --gang= is ignored here.
  std::uint64_t fault_seed = 42;
  std::vector<char*> passthrough{argv, argv + 1};
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kPrefix = "--fault-seed=";
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      fault_seed = std::strtoull(argv[i] + std::strlen(kPrefix), nullptr, 0);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  auto opt = bench::BenchOptions::parse(static_cast<int>(passthrough.size()),
                                        passthrough.data());
  // Convergence runs sweep until the residual settles; keep the default
  // grid small enough that the full 32-cell matrix stays snappy.
  if (opt.scale == 1.0) opt.scale = 0.25;

  std::vector<Cell> cells;
  std::vector<std::function<harness::RunResult()>> tasks;
  for (const char* app : kApps) {
    for (const Mode& mode : kModes) {
      for (const Severity& sev : kSeverities) {
        cells.push_back(Cell{app, &mode, &sev});
        const bench::BenchOptions o = opt;
        tasks.push_back([o, app = std::string(app), &mode, &sev,
                         fault_seed] {
          dsm::ClusterConfig cfg = o.cluster_config();
          cfg.gang = mode.gang;
          if (sev.plan[0] != '\0') {
            cfg.faults = sim::FaultSpec::parse(sev.plan);
            cfg.fault_seed = fault_seed;
          }
          return harness::run_app(app, mode.kind, cfg, o.app_params());
        });
      }
    }
  }
  const std::vector<harness::RunResult> results =
      harness::run_grid(tasks, opt.jobs);

  std::printf("Ablation X8: barrier-free async iteration vs barrier "
              "execution (fault seed %llu, scale %.2f, %d nodes)\n\n",
              static_cast<unsigned long long>(fault_seed), opt.scale,
              opt.nodes);

  std::FILE* json = std::fopen("BENCH_async.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_async.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"async_ablation\",\n"
               "  \"fault_seed\": %llu,\n  \"scale\": %.3f,\n"
               "  \"nodes\": %d,\n",
               static_cast<unsigned long long>(fault_seed), opt.scale,
               opt.nodes);
  bench::write_host_env_json(json, opt);
  std::fprintf(json, "  \"runs\": [");

  bool all_converged = true;
  bool first_json = true;
  // elapsed per (app, severity) for the best sync and best async mode,
  // for the summary's who-wins table.
  constexpr std::size_t kNumSev =
      sizeof(kSeverities) / sizeof(kSeverities[0]);
  constexpr std::size_t kNumApps = sizeof(kApps) / sizeof(kApps[0]);
  sim::SimTime best_sync[kNumApps][kNumSev];
  sim::SimTime best_async[kNumApps][kNumSev];
  for (std::size_t a = 0; a < kNumApps; ++a) {
    for (std::size_t s = 0; s < kNumSev; ++s) {
      best_sync[a][s] = 0;
      best_async[a][s] = 0;
    }
  }

  std::string cur_app;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::RunResult& run = results[i];
    // The async stencils report a converged FLAG as their checksum: 1.0
    // means every node reached the fixed point within tolerance (their
    // in-place chaotic byte pattern is schedule-dependent by design, so
    // bit-comparing grids across modes would be meaningless).
    const bool converged = run.checksum == 1.0;
    all_converged = all_converged && converged;

    if (cell.app != cur_app) {
      cur_app = cell.app;
      std::printf("%s:\n  %-11s %-10s %10s %8s %9s %8s %9s %9s\n",
                  cell.app, "mode", "severity", "elapsed", "sweeps",
                  "messages", "kB", "refreshes", "throttles");
    }
    std::printf("  %-11s %-10s %8.2fms %8llu %9llu %8llu %9llu %9llu%s\n",
                cell.mode->label, cell.severity->label,
                sim::to_msec(run.elapsed),
                static_cast<unsigned long long>(run.app_iterations),
                static_cast<unsigned long long>(run.net.table_messages()),
                static_cast<unsigned long long>(run.net.total_bytes() / 1024),
                static_cast<unsigned long long>(
                    run.counters.async_refreshes.load()),
                static_cast<unsigned long long>(
                    run.counters.async_throttles.load()),
                converged ? "" : "  NOT CONVERGED");
    if (&cell.severity[1] == kSeverities + kNumSev &&
        cell.mode == &kModes[sizeof(kModes) / sizeof(kModes[0]) - 1]) {
      std::printf("\n");
    }

    const std::size_t a = (cell.app == std::string(kApps[0])) ? 0 : 1;
    const std::size_t s =
        static_cast<std::size_t>(cell.severity - kSeverities);
    sim::SimTime* best = (cell.mode->gang == sim::GangMode::Async)
                             ? &best_async[a][s]
                             : &best_sync[a][s];
    if (*best == 0 || run.elapsed < *best) *best = run.elapsed;

    std::fprintf(json,
                 "%s\n    {\"app\": \"%s\", \"mode\": \"%s\", "
                 "\"protocol\": \"%s\", \"gang\": \"%s\", "
                 "\"severity\": \"%s\", \"plan\": \"%s\", "
                 "\"elapsed_ms\": %.3f, \"iterations\": %llu, "
                 "\"converged\": %s, \"final_residual\": %.6e, "
                 "\"messages\": %llu, \"data_kb\": %llu, "
                 "\"async_steps\": %llu, \"async_refreshes\": %llu, "
                 "\"async_invalidations\": %llu, \"async_throttles\": %llu}",
                 first_json ? "" : ",", cell.app, cell.mode->label,
                 protocols::to_string(cell.mode->kind),
                 sim::to_string(cell.mode->gang), cell.severity->label,
                 cell.severity->plan, sim::to_msec(run.elapsed),
                 static_cast<unsigned long long>(run.app_iterations),
                 converged ? "true" : "false", run.final_residual,
                 static_cast<unsigned long long>(run.net.table_messages()),
                 static_cast<unsigned long long>(run.net.total_bytes() /
                                                 1024),
                 static_cast<unsigned long long>(
                     run.counters.async_steps.load()),
                 static_cast<unsigned long long>(
                     run.counters.async_refreshes.load()),
                 static_cast<unsigned long long>(
                     run.counters.async_invalidations.load()),
                 static_cast<unsigned long long>(
                     run.counters.async_throttles.load()));
    first_json = false;
  }

  // Summary: where does asynchrony win? The paper's claim is the
  // straggler column; a clean-transport win or loss is workload-dependent.
  int async_wins_straggler = 0;
  int straggler_cells = 0;
  std::printf("summary:\n");
  for (std::size_t a = 0; a < kNumApps; ++a) {
    for (std::size_t s = 0; s < kNumSev; ++s) {
      const double ratio = static_cast<double>(best_sync[a][s]) /
                           static_cast<double>(best_async[a][s]);
      const bool straggler =
          std::strcmp(kSeverities[s].label, "straggler") == 0;
      if (straggler) {
        ++straggler_cells;
        if (ratio > 1.0) ++async_wins_straggler;
      }
      std::printf("  %-13s %-10s best sync %8.2fms / best async %8.2fms "
                  "-> async %s by %.2fx\n",
                  kApps[a], kSeverities[s].label,
                  sim::to_msec(best_sync[a][s]),
                  sim::to_msec(best_async[a][s]),
                  ratio > 1.0 ? "wins " : "loses", ratio > 1.0 ? ratio
                                                               : 1.0 / ratio);
    }
  }
  std::printf("  async wins %d/%d straggler cells; all %zu runs %s\n",
              async_wins_straggler, straggler_cells, cells.size(),
              all_converged ? "converged" : "-- SOME DID NOT CONVERGE");

  std::fprintf(json,
               "\n  ],\n  \"all_converged\": %s,\n"
               "  \"async_wins_straggler_cells\": %d,\n"
               "  \"straggler_cells\": %d\n}\n",
               all_converged ? "true" : "false", async_wins_straggler,
               straggler_cells);
  std::fclose(json);
  std::printf("wrote BENCH_async.json (%zu runs)\n", cells.size());
  return all_converged ? 0 : 1;
}
