// Reproduces Figure 3, "Time Breakdown for Bar-u": per-application
// percentage split of execution time into sigio handling, wait time,
// operating-system overhead and application computation (paper §4).
// CVM's breakdown folds user-level protocol work into "app"; we do the
// same here but also print the unfolded protocol (dsm) column, which the
// ablation benches use.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);
  cache.warm(bench::single_protocol_grid(ProtocolKind::BarU));

  std::cout << "Figure 3: Time Breakdown for Bar-u (" << opt.nodes
            << " nodes, scale " << harness::fmt(opt.scale, 2) << ")\n\n";

  harness::TextTable table(
      {"app", "sigio%", "wait%", "os%", "app%", "(protocol%)"});
  std::vector<std::string> groups;
  std::vector<std::vector<double>> values(4);
  for (const auto app : apps::app_names()) {
    cache.verify(app, ProtocolKind::BarU);
    const auto& run = cache.parallel(app, ProtocolKind::BarU);
    const auto sum = run.breakdown.summed();
    const double total = static_cast<double>(sum.total());
    const double sigio = 100.0 * static_cast<double>(sum.sigio) / total;
    const double wait = 100.0 * static_cast<double>(sum.wait) / total;
    const double os = 100.0 * static_cast<double>(sum.os) / total;
    // CVM folding: protocol (dsm) time counts as application time.
    const double app_pct =
        100.0 * static_cast<double>(sum.app + sum.dsm) / total;
    const double dsm_pct = 100.0 * static_cast<double>(sum.dsm) / total;
    table.add_row({std::string(app), harness::fmt(sigio, 1),
                   harness::fmt(wait, 1), harness::fmt(os, 1),
                   harness::fmt(app_pct, 1), harness::fmt(dsm_pct, 1)});
    groups.emplace_back(app);
    values[0].push_back(sigio);
    values[1].push_back(wait);
    values[2].push_back(os);
    values[3].push_back(app_pct);
  }
  table.print(std::cout);
  std::cout << '\n';
  harness::print_bar_chart(std::cout, "Figure 3 (bars, % of runtime)",
                           groups, {"sigio", "wait", "os", "app"}, values,
                           100.0);
  std::cout << "Paper's observation: fft, shallow and swm have substantial "
               "OS components,\ndominated by mprotect under VM stress.\n";
  return 0;
}
