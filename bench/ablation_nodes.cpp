// X3: node-count scaling to 1024. The paper reports 8-processor numbers
// only; this ablation sweeps a parametrized node list (default 8, 64, 256,
// 1024) for the four base protocols on a stencil (jacobi) and a
// communication-heavy app (fft), running every point twice -- flat master
// barrier with unicast flushes, then tree barrier (fanout 4) with relayed
// flush dissemination -- and verifying bit-exactness against the
// sequential baseline at every point. Emits BENCH_nodes.json (recording
// host_cores like BENCH_gang.json) with per-node-count barrier wait time,
// flush message counts, and the flat-vs-tree speedup.
//
// Deterministic by construction: virtual-time results depend only on
// (workload, config), never on --jobs or wall clock; the
// bench_nodes_determinism ctest pins byte-identical output.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace updsm;

constexpr const char* kApps[] = {"jacobi", "fft"};

struct Cell {
  std::string app;
  protocols::ProtocolKind kind;
  int nodes;
};

std::vector<int> parse_node_list(const char* spec) {
  std::vector<int> nodes;
  int value = 0;
  bool have = false;
  for (const char* p = spec;; ++p) {
    if (*p >= '0' && *p <= '9') {
      value = value * 10 + (*p - '0');
      have = true;
    } else if (*p == ',' || *p == '\0') {
      if (have) nodes.push_back(value);
      value = 0;
      have = false;
      if (*p == '\0') break;
    } else {
      std::fprintf(stderr, "bad --nodes-list entry: %s\n", spec);
      std::exit(2);
    }
  }
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  using protocols::ProtocolKind;

  // --nodes-list is specific to this bench; strip it before the shared
  // parser (which rejects unknown options).
  std::vector<int> node_list = {8, 64, 256, 1024};
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes-list=", 13) == 0) {
      node_list = parse_node_list(argv[i] + 13);
    } else {
      if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("extra option: --nodes-list=N,N,... "
                    "(default 8,64,256,1024)\n");
      }
      rest.push_back(argv[i]);
    }
  }
  auto opt =
      bench::BenchOptions::parse(static_cast<int>(rest.size()), rest.data());
  if (node_list.empty()) {
    std::fprintf(stderr, "--nodes-list must name at least one node count\n");
    return 2;
  }
  for (const int n : node_list) {
    if (n < 1 || n > static_cast<int>(dsm::kMaxNodes)) {
      std::fprintf(stderr, "--nodes-list entry %d outside [1, %d]\n", n,
                   static_cast<int>(dsm::kMaxNodes));
      return 2;
    }
  }
  // 2 apps x |nodes| x 4 protocols x {flat, tree}; keep the sweep snappy
  // (the interesting signal is message/time scaling, not problem size).
  if (opt.scale == 1.0) opt.scale = 0.5;
  const int tree_fanout = opt.fanout >= 2 ? opt.fanout : 4;
  const int relay_threshold =
      opt.relay_threshold > 0 ? opt.relay_threshold : 4;

  // Plan every run up front and execute on the --jobs worker pool; results
  // land in task order, so output is identical at any worker count. Each
  // cell contributes two runs: flat topology then tree + relay. One
  // sequential baseline per app (the baseline is a single process; its
  // checksum and time do not depend on the cluster size).
  std::vector<Cell> cells;
  std::vector<std::function<harness::RunResult()>> tasks;
  std::vector<std::string> seq_apps;
  for (const char* app : kApps) {
    const bench::BenchOptions o = opt;
    tasks.push_back([o, app = std::string(app)] {
      return harness::run_sequential(app, o.cluster_config(), o.app_params());
    });
    seq_apps.push_back(app);
    for (const ProtocolKind kind : protocols::base_protocols()) {
      for (const int nodes : node_list) {
        cells.push_back(Cell{app, kind, nodes});
        for (const bool tree : {false, true}) {
          tasks.push_back([o, app = std::string(app), kind, nodes, tree,
                           tree_fanout, relay_threshold] {
            dsm::ClusterConfig cfg = o.cluster_config();
            cfg.num_nodes = nodes;
            cfg.barrier_fanout = tree ? tree_fanout : 0;
            cfg.relay_threshold = tree ? relay_threshold : 0;
            return harness::run_app(app, kind, cfg, o.app_params());
          });
        }
      }
    }
  }
  const std::vector<harness::RunResult> results =
      harness::run_grid(tasks, opt.jobs);

  // Task order: [seq(app0), cells(app0) x {flat, tree}..., seq(app1), ...].
  std::size_t next = 0;
  std::vector<harness::RunResult> seq_results;
  std::vector<harness::RunResult> flat_results;
  std::vector<harness::RunResult> tree_results;
  std::size_t cell_idx = 0;
  for (std::size_t a = 0; a < seq_apps.size(); ++a) {
    seq_results.push_back(results[next++]);
    while (cell_idx < cells.size() && cells[cell_idx].app == seq_apps[a]) {
      flat_results.push_back(results[next++]);
      tree_results.push_back(results[next++]);
      ++cell_idx;
    }
  }

  auto seq_of = [&](const std::string& app) -> const harness::RunResult& {
    for (std::size_t a = 0; a < seq_apps.size(); ++a) {
      if (seq_apps[a] == app) return seq_results[a];
    }
    std::fprintf(stderr, "FATAL: no sequential baseline for %s\n",
                 app.c_str());
    std::exit(1);
  };

  std::printf("Ablation X3: scaling to 1024 nodes, flat vs tree(%d)+relay(%d) "
              "(scale %.2f)\n\n",
              tree_fanout, relay_threshold, opt.scale);

  std::FILE* json = std::fopen("BENCH_nodes.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_nodes.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"node_scaling\",\n"
               "  \"scale\": %.3f,\n  \"tree_fanout\": %d,\n"
               "  \"relay_threshold\": %d,\n",
               opt.scale, tree_fanout, relay_threshold);
  // The sweep varies node counts, so the per-run resolved worker count can
  // be lower (clamped to the cell's nodes); the header records the
  // requested setting resolved against the default cluster size.
  bench::write_host_env_json(json, opt);
  std::fprintf(json, "  \"runs\": [");

  bool first_json = true;
  std::string cur_header;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::RunResult& flat = flat_results[i];
    const harness::RunResult& tree = tree_results[i];
    const harness::RunResult& seq = seq_of(cell.app);
    if (flat.checksum != seq.checksum || tree.checksum != seq.checksum) {
      std::fprintf(stderr, "FATAL: %s under %s diverged at %d nodes\n",
                   cell.app.c_str(), protocols::to_string(cell.kind),
                   cell.nodes);
      return 1;
    }

    const std::string header =
        cell.app + " under " + protocols::to_string(cell.kind);
    if (header != cur_header) {
      if (!cur_header.empty()) std::printf("\n");
      cur_header = header;
      std::printf("%s:\n  %6s %10s %10s %8s %11s %11s %11s %8s\n",
                  header.c_str(), "nodes", "flat", "tree", "speedup",
                  "wait-flat", "wait-tree", "msgs-flat", "reduce");
    }
    const double speedup =
        tree.elapsed > 0 ? static_cast<double>(flat.elapsed) /
                               static_cast<double>(tree.elapsed)
                         : 0.0;
    const sim::SimTime wait_flat = flat.breakdown.summed().wait;
    const sim::SimTime wait_tree = tree.breakdown.summed().wait;
    const std::uint64_t msgs_flat = flat.net.flush_class_messages();
    const std::uint64_t msgs_tree = tree.net.flush_class_messages();
    const double reduction =
        msgs_tree == 0 ? 1.0
                       : static_cast<double>(msgs_flat) /
                             static_cast<double>(msgs_tree);
    std::printf("  %6d %8.2fms %8.2fms %7.3fx %9.2fms %9.2fms %11llu %7.2fx\n",
                cell.nodes, sim::to_msec(flat.elapsed),
                sim::to_msec(tree.elapsed), speedup, sim::to_msec(wait_flat),
                sim::to_msec(wait_tree),
                static_cast<unsigned long long>(msgs_flat), reduction);

    std::fprintf(
        json,
        "%s\n    {\"app\": \"%s\", \"protocol\": \"%s\", \"nodes\": %d, "
        "\"elapsed_flat_ms\": %.3f, \"elapsed_tree_ms\": %.3f, "
        "\"speedup_flat_vs_tree\": %.4f, "
        "\"barrier_wait_flat_ms\": %.3f, \"barrier_wait_tree_ms\": %.3f, "
        "\"flush_messages_flat\": %llu, \"flush_messages_tree\": %llu, "
        "\"flush_message_reduction\": %.4f, \"relay_batches\": %llu, "
        "\"relay_messages\": %llu, \"total_messages_flat\": %llu, "
        "\"total_messages_tree\": %llu, \"barriers\": %llu, "
        "\"correct\": true}",
        first_json ? "" : ",", cell.app.c_str(),
        protocols::to_string(cell.kind), cell.nodes,
        sim::to_msec(flat.elapsed), sim::to_msec(tree.elapsed), speedup,
        sim::to_msec(wait_flat), sim::to_msec(wait_tree),
        static_cast<unsigned long long>(msgs_flat),
        static_cast<unsigned long long>(msgs_tree), reduction,
        static_cast<unsigned long long>(tree.counters.relay_batches.load()),
        static_cast<unsigned long long>(tree.counters.relay_messages.load()),
        static_cast<unsigned long long>(flat.net.table_messages()),
        static_cast<unsigned long long>(tree.net.table_messages()),
        static_cast<unsigned long long>(tree.barriers));
    first_json = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_nodes.json (%zu cells x {flat, tree}, "
              "all bit-exact vs sequential)\n",
              cells.size());
  return 0;
}
