// X3: node-count scaling. The paper reports 8-processor numbers only; this
// ablation sweeps 2..16 nodes for the four base protocols on a stencil
// (sor) and a communication-heavy app (fft) to show each protocol's
// scaling shape.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  std::cout << "Ablation X3: speedup vs node count\n\n";
  for (const auto app : {"sor", "fft", "swm"}) {
    harness::TextTable table({"nodes", "lmw-i", "lmw-u", "bar-i", "bar-u"});
    for (const int nodes : {2, 4, 8, 16}) {
      dsm::ClusterConfig cfg = opt.cluster_config();
      cfg.num_nodes = nodes;
      const auto params = opt.app_params();
      const auto seq = harness::run_sequential(app, cfg, params);
      std::vector<std::string> row{std::to_string(nodes)};
      for (const auto kind : protocols::base_protocols()) {
        const auto par = harness::run_app(app, kind, cfg, params);
        if (par.checksum != seq.checksum) {
          std::cerr << "FATAL: divergence for " << app << " at " << nodes
                    << " nodes under " << protocols::to_string(kind) << "\n";
          return 1;
        }
        row.push_back(harness::fmt(harness::speedup(par, seq)));
      }
      table.add_row(std::move(row));
    }
    std::cout << app << ":\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
