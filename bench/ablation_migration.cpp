// X4: home-assignment ablation (paper §2.2.1). Three ways to pick homes:
//
//   migrated  -- the paper's runtime migration (collect behaviour during
//                iteration 1, migrate before iteration 2);
//   naive     -- static block-distributed homes, no migration (what a
//                system without annotations or migration would do);
//   annotated -- Zhou-style user annotations with a PERFECT assignment
//                (we extract the homes the migration pass converged to and
//                hand them back as annotations, modelling the §2.2.1 claim
//                that "making such assignments is easy for the majority of
//                cases" -- at the cost of programmer burden).
#include <iostream>

#include "bench_common.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/protocols/bar.hpp"

namespace {

using namespace updsm;

/// Runs bar-u once with migration and returns the converged home map.
std::vector<std::uint32_t> learn_homes(std::string_view app_name,
                                       const dsm::ClusterConfig& cfg,
                                       const apps::AppParams& params) {
  auto app = apps::make_app(app_name, params);
  mem::SharedHeap heap(cfg.page_size);
  app->allocate(heap);
  auto protocol = protocols::make_protocol(protocols::ProtocolKind::BarU);
  auto* bar = dynamic_cast<protocols::BarProtocol*>(protocol.get());
  dsm::Cluster cluster(cfg, heap, std::move(protocol));
  cluster.run([&](dsm::NodeContext& ctx) { app->run(ctx); });
  std::vector<std::uint32_t> homes(heap.segment_pages());
  for (std::uint32_t p = 0; p < homes.size(); ++p) {
    homes[p] = bar->home(PageId{p}).value();
  }
  return homes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  std::cout << "Ablation X4: home assignment strategies under bar-u\n\n";
  // (Migration itself happens during warm-up, outside the measurement
  // window, so steady-state counters show its *effect*, not the moves.)
  harness::TextTable table({"app", "migrated", "naive static",
                            "annotated", "misses naive/migrated"});
  for (const auto app : apps::app_names()) {
    const auto params = opt.app_params();
    dsm::ClusterConfig cfg_migrate = opt.cluster_config();
    dsm::ClusterConfig cfg_naive = opt.cluster_config();
    cfg_naive.home_migration = false;
    dsm::ClusterConfig cfg_annotated = opt.cluster_config();
    cfg_annotated.home_migration = false;
    cfg_annotated.static_homes = learn_homes(app, cfg_migrate, params);

    const auto seq = harness::run_sequential(app, cfg_migrate, params);
    const auto migrated =
        harness::run_app(app, ProtocolKind::BarU, cfg_migrate, params);
    const auto naive =
        harness::run_app(app, ProtocolKind::BarU, cfg_naive, params);
    const auto annotated =
        harness::run_app(app, ProtocolKind::BarU, cfg_annotated, params);
    for (const auto* run : {&migrated, &naive, &annotated}) {
      if (run->checksum != seq.checksum) {
        std::cerr << "FATAL: divergence for " << app << "\n";
        return 1;
      }
    }
    table.add_row(
        {std::string(app), harness::fmt(harness::speedup(migrated, seq)),
         harness::fmt(harness::speedup(naive, seq)),
         harness::fmt(harness::speedup(annotated, seq)),
         std::to_string(naive.counters.remote_misses) + "/" +
             std::to_string(migrated.counters.remote_misses)});
  }
  table.print(std::cout);
  std::cout << "\nRuntime migration recovers (at least) the annotated "
               "assignment's performance\nwithout the user annotations Zhou "
               "required (paper section 2.2.1).\n";
  return 0;
}
