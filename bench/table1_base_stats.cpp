// Reproduces Table 1, "Base Statistics": diff creations, remote misses,
// messages, and data communicated for lmw-i / lmw-u / bar-i / bar-u over
// the eight applications (paper §3.3).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);
  cache.warm(bench::base_grid());

  const auto protos = protocols::base_protocols();
  std::cout << "Table 1: Base Statistics (" << opt.nodes << " nodes, scale "
            << harness::fmt(opt.scale, 2) << ", " << opt.iterations
            << " measured iterations)\n"
            << "columns per metric: li = lmw-i, lu = lmw-u, bi = bar-i, "
               "bu = bar-u\n\n";

  harness::TextTable table({"app",
                            "diffs li", "lu", "bi", "bu",
                            "misses li", "lu", "bi", "bu",
                            "msgs li", "lu", "bi", "bu",
                            "data(kB) li", "lu", "bi", "bu"});
  for (const auto app : apps::app_names()) {
    std::vector<std::string> row{std::string(app)};
    for (const auto kind : protos) cache.verify(app, kind);
    for (const auto kind : protos) {
      row.push_back(std::to_string(cache.parallel(app, kind)
                                       .counters.diffs_created));
    }
    for (const auto kind : protos) {
      row.push_back(std::to_string(cache.parallel(app, kind)
                                       .counters.remote_misses));
    }
    for (const auto kind : protos) {
      row.push_back(std::to_string(cache.parallel(app, kind)
                                       .net.table_messages()));
    }
    for (const auto kind : protos) {
      row.push_back(std::to_string(cache.parallel(app, kind)
                                       .net.total_bytes() / 1024));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Paper §3.3 aggregate relations derived from this table.
  double diff_ratio = 0;
  double miss_ratio = 0;
  double msg_ratio = 0;
  double data_ratio = 0;
  int n = 0;
  for (const auto app : apps::app_names()) {
    const auto& li = cache.parallel(app, ProtocolKind::LmwI);
    const auto& bi = cache.parallel(app, ProtocolKind::BarI);
    if (li.counters.diffs_created == 0 || li.counters.remote_misses == 0) {
      continue;
    }
    diff_ratio += static_cast<double>(bi.counters.diffs_created) /
                  static_cast<double>(li.counters.diffs_created);
    miss_ratio += static_cast<double>(bi.counters.remote_misses) /
                  static_cast<double>(li.counters.remote_misses);
    msg_ratio += static_cast<double>(bi.net.table_messages()) /
                 static_cast<double>(li.net.table_messages());
    data_ratio += static_cast<double>(bi.net.total_bytes()) /
                  static_cast<double>(li.net.total_bytes());
    ++n;
  }
  std::cout << "\nbar-i vs lmw-i (mean over apps; paper: -36% diffs, -31% "
               "misses, -49% messages, +74% data):\n"
            << "  diffs " << harness::fmt(100 * (diff_ratio / n - 1), 1)
            << "%  misses " << harness::fmt(100 * (miss_ratio / n - 1), 1)
            << "%  messages " << harness::fmt(100 * (msg_ratio / n - 1), 1)
            << "%  data " << harness::fmt(100 * (data_ratio / n - 1), 1)
            << "%\n";
  return 0;
}
