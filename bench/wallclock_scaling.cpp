// Wall-clock scaling trajectory of the host-parallel execution engine.
//
// Sweeps jacobi + fft under {bar-u, lmw-u} at 8/64/256 simulated nodes with
// the bounded worker pool at 1/2/4/8 OS threads, measuring *host* wall
// seconds per cell (simulated results are bit-identical everywhere -- each
// parallel run is checked against the sequential-baton baseline and the
// bench aborts on any divergence). Emits BENCH_wallclock.json with, per
// cell: wall seconds, simulated-node-barriers-per-core-second (the
// engine-throughput figure of merit: nodes x barriers / (wall x cores
// actually used)), and the speedup over the baton.
//
// stdout carries ONLY the deterministic `check ...` lines (one per
// app/protocol/nodes cell -- independent of the worker sweep), so a ctest
// can diff the output of two different --workers-list values byte for byte;
// timings go to stderr and the JSON.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using updsm::bench::BenchOptions;
using updsm::protocols::ProtocolKind;
using GangMode = updsm::sim::GangMode;

struct Timed {
  updsm::harness::RunResult result;
  double wall_s = 0.0;
};

Timed timed_run(const std::string& app, ProtocolKind kind,
                const updsm::dsm::ClusterConfig& cfg,
                const updsm::apps::AppParams& params) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  Timed t;
  t.result = updsm::harness::run_app(app, kind, cfg, params);
  t.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  return t;
}

std::vector<int> parse_workers_list(const char* v) {
  std::vector<int> out;
  const char* p = v;
  while (*p != '\0') {
    char* end = nullptr;
    const long w = std::strtol(p, &end, 10);
    if (end == p || w < 1) {
      std::fprintf(stderr, "--workers-list entries must be >= 1: %s\n", v);
      std::exit(2);
    }
    out.push_back(static_cast<int>(w));
    p = (*end == ',') ? end + 1 : end;
    if (*end != '\0' && *end != ',') {
      std::fprintf(stderr, "bad --workers-list: %s\n", v);
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "--workers-list must not be empty\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the bench-specific flags, forward the rest to the shared parser.
  std::vector<int> workers_list = {1, 2, 4, 8};
  bool quick = false;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers-list=", 15) == 0) {
      workers_list = parse_workers_list(argv[i] + 15);
      continue;
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    fwd.push_back(argv[i]);
  }
  BenchOptions opt =
      BenchOptions::parse(static_cast<int>(fwd.size()), fwd.data());

  const std::vector<std::string> apps = {"jacobi", "fft"};
  const std::vector<ProtocolKind> protos = {ProtocolKind::BarU,
                                            ProtocolKind::LmwU};
  std::vector<int> node_counts = quick ? std::vector<int>{8, 64}
                                       : std::vector<int>{8, 64, 256};

  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "wallclock_scaling: %zu apps x %zu protocols x %zu node "
               "counts, workers sweep of %zu, on %u host cores\n",
               apps.size(), protos.size(), node_counts.size(),
               workers_list.size(), cores);

  std::FILE* json = std::fopen("BENCH_wallclock.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_wallclock.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"wallclock_scaling\",\n"
               "  \"scale\": %.3f,\n  \"iters\": %d,\n",
               opt.scale, opt.iterations);
  // The sweep varies workers per run (recorded per row); header "workers"
  // is the auto resolution at the default cluster size, as everywhere.
  updsm::bench::write_host_env_json(json, opt);
  std::fprintf(json, "  \"runs\": [");

  bool first_json = true;
  for (const std::string& app : apps) {
    for (const ProtocolKind kind : protos) {
      for (const int nodes : node_counts) {
        updsm::dsm::ClusterConfig cfg = opt.cluster_config();
        cfg.num_nodes = nodes;
        updsm::dsm::validate_cluster_config(cfg);
        const updsm::apps::AppParams params = opt.app_params();

        // Baseline: the sequential baton on one worker (the pre-pool
        // execution model -- every node context multiplexed over a single
        // host thread, strictly in node order).
        updsm::dsm::ClusterConfig baton_cfg = cfg;
        baton_cfg.gang = GangMode::Baton;
        baton_cfg.workers = 1;
        const Timed baton = timed_run(app, kind, baton_cfg, params);

        for (const int w : workers_list) {
          if (w > nodes) continue;  // clamp would alias a swept point
          updsm::dsm::ClusterConfig par_cfg = cfg;
          par_cfg.gang = GangMode::Parallel;
          par_cfg.workers = w;
          const Timed par = timed_run(app, kind, par_cfg, params);
          if (par.result.checksum != baton.result.checksum ||
              par.result.barriers != baton.result.barriers) {
            std::fprintf(stderr,
                         "FATAL: %s/%s at %d nodes, %d workers diverged "
                         "from the baton (checksum %.17g vs %.17g)\n",
                         app.c_str(), updsm::protocols::to_string(kind),
                         nodes, w, par.result.checksum,
                         baton.result.checksum);
            return 1;
          }
          const int cores_used =
              std::min(w, static_cast<int>(cores == 0 ? 1 : cores));
          const double per_core_s =
              static_cast<double>(nodes) *
              static_cast<double>(par.result.barriers) /
              (par.wall_s * static_cast<double>(cores_used));
          std::fprintf(json,
                       "%s\n    {\"app\": \"%s\", \"protocol\": \"%s\", "
                       "\"nodes\": %d, \"workers\": %d, "
                       "\"wall_s\": %.4f, \"baton_wall_s\": %.4f, "
                       "\"barriers\": %llu, "
                       "\"node_barriers_per_core_s\": %.1f, "
                       "\"speedup_vs_baton\": %.3f}",
                       first_json ? "" : ",", app.c_str(),
                       updsm::protocols::to_string(kind), nodes, w,
                       par.wall_s, baton.wall_s,
                       static_cast<unsigned long long>(par.result.barriers),
                       per_core_s, baton.wall_s / par.wall_s);
          first_json = false;
          std::fprintf(stderr,
                       "  %-6s %-6s n=%-4d w=%-2d  %7.3fs  (baton %7.3fs, "
                       "speedup %.2fx)\n",
                       app.c_str(), updsm::protocols::to_string(kind), nodes,
                       w, par.wall_s, baton.wall_s,
                       baton.wall_s / par.wall_s);
        }

        // Deterministic per-cell line: simulation outputs only, identical
        // for every --workers-list (each swept point already proved
        // bit-identical to this baseline above).
        std::printf("check app=%s proto=%s nodes=%d checksum=%.17g "
                    "barriers=%llu\n",
                    app.c_str(), updsm::protocols::to_string(kind), nodes,
                    baton.result.checksum,
                    static_cast<unsigned long long>(baton.result.barriers));
      }
    }
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::fprintf(stderr, "wrote BENCH_wallclock.json\n");
  return 0;
}
