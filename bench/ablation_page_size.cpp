// X2: page-size ablation. The paper used an 8 KB protection granularity on
// AIX (whose native page is 4 KB) "by the simple expedient of ensuring that
// all page protection changes use an 8k granularity" (§3.2). This bench
// compares 4 KB vs 8 KB vs 16 KB under bar-u: smaller pages mean more
// protection traffic per byte but finer sharing; bigger pages amplify
// false sharing.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  std::cout << "Ablation X2: page-size sensitivity of bar-u\n\n";
  harness::TextTable table({"app", "4kB speedup", "8kB speedup",
                            "16kB speedup", "4kB data(kB)", "8kB data(kB)",
                            "16kB data(kB)"});
  for (const auto app : apps::app_names()) {
    std::vector<double> speedups;
    std::vector<std::uint64_t> bytes;
    for (const std::uint32_t page_size : {4096u, 8192u, 16384u}) {
      dsm::ClusterConfig cfg = opt.cluster_config();
      cfg.page_size = page_size;
      const auto params = opt.app_params();
      const auto par = harness::run_app(app, ProtocolKind::BarU, cfg, params);
      const auto seq = harness::run_sequential(app, cfg, params);
      if (par.checksum != seq.checksum) {
        std::cerr << "FATAL: divergence for " << app << " at page size "
                  << page_size << "\n";
        return 1;
      }
      speedups.push_back(harness::speedup(par, seq));
      bytes.push_back(par.net.total_bytes() / 1024);
    }
    table.add_row({std::string(app), harness::fmt(speedups[0]),
                   harness::fmt(speedups[1]), harness::fmt(speedups[2]),
                   std::to_string(bytes[0]), std::to_string(bytes[1]),
                   std::to_string(bytes[2])});
  }
  table.print(std::cout);
  return 0;
}
