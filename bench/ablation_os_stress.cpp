// X1: mprotect-stress ablation. The paper's §4 diagnosis is that bar-u's
// residual overhead is mprotect traffic under a stressed VM layer whose
// primitives are "location-dependent, occasionally an order of magnitude"
// slower. If that diagnosis is right, flattening mprotect back to its
// nominal 12 us should collapse most of bar-m's advantage. This bench runs
// bar-u and bar-m under both OS models and prints the gain each time.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  auto run_gain = [&](std::string_view app, bool stressed, double* os_pct) {
    dsm::ClusterConfig cfg = opt.cluster_config();
    if (!stressed) {
      cfg.costs.os.stress_multiplier = 1.0;
      cfg.costs.os.slow_page_fraction = 0.0;
    }
    const auto params = opt.app_params();
    const auto bar_u =
        harness::run_app(app, ProtocolKind::BarU, cfg, params);
    const auto bar_m =
        harness::run_app(app, ProtocolKind::BarM, cfg, params);
    const auto sum = bar_u.breakdown.summed();
    *os_pct = 100.0 * static_cast<double>(sum.os) /
              static_cast<double>(sum.total());
    return 100.0 * (static_cast<double>(bar_u.elapsed) /
                        static_cast<double>(bar_m.elapsed) -
                    1.0);
  };

  std::cout << "Ablation X1: bar-m gain over bar-u, with and without the "
               "mprotect stress regime\n\n";
  harness::TextTable table({"app", "bar-u os% (stressed)",
                            "bar-m gain% (stressed)",
                            "bar-u os% (nominal)",
                            "bar-m gain% (nominal)"});
  double stressed_total = 0;
  double nominal_total = 0;
  int n = 0;
  for (const auto app : apps::app_names()) {
    if (!bench::overdrive_safe(app)) continue;
    double os_s = 0;
    double os_n = 0;
    const double gain_s = run_gain(app, /*stressed=*/true, &os_s);
    const double gain_n = run_gain(app, /*stressed=*/false, &os_n);
    table.add_row({std::string(app), harness::fmt(os_s, 1),
                   harness::fmt(gain_s, 1), harness::fmt(os_n, 1),
                   harness::fmt(gain_n, 1)});
    stressed_total += gain_s;
    nominal_total += gain_n;
    ++n;
  }
  table.print(std::cout);
  std::cout << "\nmean bar-m gain: stressed "
            << harness::fmt(stressed_total / n, 1) << "%, nominal "
            << harness::fmt(nominal_total / n, 1)
            << "% -- the gap is the OS-stress contribution the paper "
               "identifies\n(\"eliminating kernel traps will always help, "
               "even with tuned OS support\", paper section 5.2).\n";
  return 0;
}
