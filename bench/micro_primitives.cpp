// Micro-benchmarks of the substrate primitives (google-benchmark): diff
// creation/application throughput for sparse and dense modifications, twin
// copies, and the simulated-platform composite costs (the §3.2
// micro-benchmark table: RPC round trip, remote fault).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "updsm/mem/diff.hpp"
#include "updsm/sim/cost_model.hpp"

namespace {

using updsm::mem::Diff;

std::vector<std::byte> make_page(std::size_t size, unsigned seed) {
  std::vector<std::byte> page(size);
  for (std::size_t i = 0; i < size; ++i) {
    page[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return page;
}

void BM_DiffCreateSparse(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  auto cur = twin;
  // Modify ~2% of the page in 16-byte islands.
  for (std::size_t off = 0; off + 16 <= size; off += 768) {
    std::memset(cur.data() + off, 0x5a, 16);
  }
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateSparse)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DiffCreateDense(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  const auto cur = make_page(size, 2);  // everything differs
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateDense)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DiffApply(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  auto cur = twin;
  for (std::size_t off = 0; off + 64 <= size; off += 256) {
    std::memset(cur.data() + off, 0x5a, 64);
  }
  const Diff diff = Diff::create(twin, cur);
  auto target = make_page(size, 1);
  for (auto _ : state) {
    diff.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(diff.payload_bytes()));
}
BENCHMARK(BM_DiffApply)->Arg(8192);

void BM_CostModelComposites(benchmark::State& state) {
  const auto model = updsm::sim::CostModel::sp2_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.rpc_roundtrip());
  }
  // Report the calibrated values once, as counters (paper §3.2: RPC 160us).
  state.counters["rpc_roundtrip_us"] =
      updsm::sim::to_usec(model.rpc_roundtrip());
}
BENCHMARK(BM_CostModelComposites);

}  // namespace

BENCHMARK_MAIN();
