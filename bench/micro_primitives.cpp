// Micro-benchmarks of the substrate primitives (google-benchmark): diff
// creation/application throughput for sparse, dense, alternating and
// identical modifications, twin copies, the simulated-platform composite
// costs (the §3.2 micro-benchmark table: RPC round trip, remote fault), and
// the gang scheduler (phase dispatch latency and barrier throughput in both
// modes). Emits BENCH_diff.json (diff-creation throughput) and
// BENCH_gang.json (baton vs parallel wall-clock of a real workload at
// 2/4/8 nodes) for perf-trajectory tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "updsm/dsm/copyset.hpp"
#include "updsm/dsm/flush_batch.hpp"
#include "updsm/dsm/node_context.hpp"
#include "updsm/harness/experiment.hpp"
#include "updsm/mem/diff.hpp"
#include "updsm/protocols/adaptive.hpp"
#include "updsm/sim/cost_model.hpp"
#include "updsm/sim/gang.hpp"

namespace {

using updsm::mem::Diff;

std::vector<std::byte> make_page(std::size_t size, unsigned seed) {
  std::vector<std::byte> page(size);
  for (std::size_t i = 0; i < size; ++i) {
    page[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return page;
}

/// The canonical dirty patterns for diff-creation throughput. `sparse` is
/// the paper's common case (a few touched islands per page) and the target
/// of the block-skip fast path; `alternating` (every other word dirty)
/// defeats block skipping entirely and bounds the fast path's overhead.
std::vector<std::byte> make_current(const std::vector<std::byte>& twin,
                                    const std::string& pattern) {
  std::vector<std::byte> cur = twin;
  if (pattern == "dense") {
    for (auto& b : cur) b = static_cast<std::byte>(~std::to_integer<unsigned>(b));
  } else if (pattern == "sparse") {
    for (std::size_t off = 0; off + 16 <= cur.size(); off += 768) {
      std::memset(cur.data() + off, 0x5a, 16);
    }
  } else if (pattern == "alternating") {
    for (std::size_t off = 0; off < cur.size(); off += 16) {
      std::memset(cur.data() + off, 0x5a, 8);
    }
  }  // "identical": leave the copy untouched
  return cur;
}

void BM_DiffCreateSparse(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  auto cur = twin;
  // Modify ~2% of the page in 16-byte islands.
  for (std::size_t off = 0; off + 16 <= size; off += 768) {
    std::memset(cur.data() + off, 0x5a, 16);
  }
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateSparse)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DiffCreateDense(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  const auto cur = make_page(size, 2);  // everything differs
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateDense)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DiffCreateAlternating(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  const auto cur = make_current(twin, "alternating");
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateAlternating)->Arg(8192);

void BM_DiffCreateIdentical(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  const auto cur = twin;
  for (auto _ : state) {
    Diff diff = Diff::create(twin, cur);
    benchmark::DoNotOptimize(diff.empty());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateIdentical)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_DiffCreateIntoReused(benchmark::State& state) {
  // The protocol hot loop: one scratch diff recycled across pages.
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  const auto cur = make_current(twin, "sparse");
  Diff scratch;
  for (auto _ : state) {
    Diff::create_into(scratch, twin, cur);
    benchmark::DoNotOptimize(scratch.payload_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DiffCreateIntoReused)->Arg(8192);

void BM_DiffApply(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto twin = make_page(size, 1);
  auto cur = twin;
  for (std::size_t off = 0; off + 64 <= size; off += 256) {
    std::memset(cur.data() + off, 0x5a, 64);
  }
  const Diff diff = Diff::create(twin, cur);
  auto target = make_page(size, 1);
  for (auto _ : state) {
    diff.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(diff.payload_bytes()));
}
BENCHMARK(BM_DiffApply)->Arg(8192);

/// Diffs for a batch of `count` sparse pages, the barrier-flush hot shape.
std::vector<Diff> make_batch_diffs(std::size_t count, std::size_t page) {
  std::vector<Diff> diffs;
  for (std::size_t i = 0; i < count; ++i) {
    const auto twin = make_page(page, static_cast<unsigned>(i));
    const auto cur = make_current(twin, "sparse");
    diffs.push_back(Diff::create(twin, cur));
  }
  return diffs;
}

/// Serializing one aggregated flush batch: begin/add x N/seal into a reused
/// writer, exactly the per-(sender, destination) work a barrier performs.
/// Arg: records per batch.
void BM_FlushBatchEncode(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const auto diffs = make_batch_diffs(records, 8192);
  updsm::dsm::FlushBatchWriter writer;
  for (auto _ : state) {
    writer.reset();
    writer.begin(updsm::NodeId{0});
    for (std::size_t i = 0; i < records; ++i) {
      writer.add(updsm::PageId{static_cast<std::uint32_t>(i)},
                 updsm::NodeId{0}, updsm::EpochId{1}, diffs[i]);
    }
    writer.seal();
    benchmark::DoNotOptimize(writer.bytes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_FlushBatchEncode)->Arg(1)->Arg(8)->Arg(32);

/// Walking a received batch in place and applying every record -- the
/// receiver side of the aggregated path. Arg: records per batch.
void BM_FlushBatchDecode(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const auto diffs = make_batch_diffs(records, 8192);
  updsm::dsm::FlushBatchWriter writer;
  writer.begin(updsm::NodeId{0});
  for (std::size_t i = 0; i < records; ++i) {
    writer.add(updsm::PageId{static_cast<std::uint32_t>(i)},
               updsm::NodeId{0}, updsm::EpochId{1}, diffs[i]);
  }
  writer.seal();
  auto target = make_page(8192, 99);
  for (auto _ : state) {
    updsm::dsm::FlushBatchReader reader(writer.bytes());
    updsm::dsm::FlushRecordView rec;
    while (reader.next(rec) == updsm::dsm::BatchReadStatus::Record) {
      rec.apply(target);
    }
    benchmark::DoNotOptimize(target.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_FlushBatchDecode)->Arg(1)->Arg(8)->Arg(32);

void BM_CostModelComposites(benchmark::State& state) {
  const auto model = updsm::sim::CostModel::sp2_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.rpc_roundtrip());
  }
  // Report the calibrated values once, as counters (paper §3.2: RPC 160us).
  state.counters["rpc_roundtrip_us"] =
      updsm::sim::to_usec(model.rpc_roundtrip());
}
BENCHMARK(BM_CostModelComposites);

/// Host cost of one adaptive-policy page evaluation (three modeled costs
/// plus the switch decision) -- the work the simulator charges per written
/// page per barrier through DsmCosts::policy_eval_per_page_ns. The measured
/// ns/eval here justifies (or indicts) that knob's default; the charged
/// value also covers the window fold the protocol performs before calling
/// evaluate(). Arg: 0 = sp2 profile, 1 = rdma.
void BM_AdaptivePolicyEval(benchmark::State& state) {
  const auto model = state.range(0) == 0
                         ? updsm::sim::CostModel::sp2_defaults()
                         : updsm::sim::CostModel::rdma_defaults();
  updsm::protocols::AdaptivePolicy policy;
  policy.costs = &model;
  // A rotating set of realistic signals so the branch mix is honest:
  // stencil edge page, migratory page, read-mostly page, idle page.
  const updsm::protocols::PageSignal signals[] = {
      {1.0, 1.0, 512.0, 1.0, 0.0, true, true},
      {1.0, 2.0, 4096.0, 3.0, 2.0, false, true},
      {0.25, 1.0, 128.0, 6.0, 0.5, true, true},
      {0.05, 1.0, 64.0, 0.0, 0.0, true, false},
  };
  const updsm::protocols::PageMode modes[] = {
      updsm::protocols::PageMode::Update,
      updsm::protocols::PageMode::Invalidate,
      updsm::protocols::PageMode::Overdrive,
  };
  std::size_t i = 0;
  for (auto _ : state) {
    const auto mode = policy.evaluate(modes[i % 3], signals[i % 4]);
    benchmark::DoNotOptimize(mode);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["charged_ns_per_eval"] = model.dsm.policy_eval_per_page_ns;
}
BENCHMARK(BM_AdaptivePolicyEval)->Arg(0)->Arg(1);

// --- gang scheduler ---------------------------------------------------------

updsm::sim::GangMode gang_mode(std::int64_t flag) {
  return flag == 0 ? updsm::sim::GangMode::Baton
                   : updsm::sim::GangMode::Parallel;
}

/// Latency of one run() dispatch: arm the persistent pool, execute one
/// (empty) phase per node, join. Args: {nodes, 0=baton|1=parallel}.
void BM_GangPhaseDispatch(benchmark::State& state) {
  updsm::sim::Gang gang(static_cast<int>(state.range(0)),
                        gang_mode(state.range(1)));
  for (auto _ : state) {
    gang.run([](int) {}, [](std::uint64_t) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GangPhaseDispatch)
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1});

/// Barrier throughput: barriers completed per second with empty phases --
/// the pure scheduling cost a protocol's barrier work rides on.
/// Args: {nodes, 0=baton|1=parallel}.
void BM_GangBarrierThroughput(benchmark::State& state) {
  constexpr int kBarriersPerRun = 64;
  updsm::sim::Gang gang(static_cast<int>(state.range(0)),
                        gang_mode(state.range(1)));
  for (auto _ : state) {
    gang.run(
        [&](int node) {
          for (int i = 0; i < kBarriersPerRun; ++i) gang.barrier_wait(node);
        },
        [](std::uint64_t) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBarriersPerRun);
}
BENCHMARK(BM_GangBarrierThroughput)
    ->Args({2, 0})->Args({2, 1})
    ->Args({8, 0})->Args({8, 1});

// --- barrier topology and copysets ------------------------------------------

/// Host cost of simulating barrier arrival + release across a cluster:
/// with no shared writes, an lmw-i cluster runs nothing but barriers, so
/// this is the per-barrier simulation overhead (message accounting, clock
/// math, reduction folding) the scaled topologies must keep in check.
/// Args: {nodes, barrier_fanout (0 = flat)}.
void BM_ClusterBarrierArrival(benchmark::State& state) {
  constexpr int kBarriersPerRun = 16;
  updsm::dsm::ClusterConfig cfg;
  cfg.num_nodes = static_cast<int>(state.range(0));
  cfg.barrier_fanout = static_cast<int>(state.range(1));
  cfg.page_size = 1024;
  cfg.gang = updsm::sim::GangMode::Baton;  // pure simulation cost, no pool
  for (auto _ : state) {
    updsm::mem::SharedHeap heap(cfg.page_size);
    heap.alloc_page_aligned(64, "pad");
    updsm::dsm::Cluster cluster(
        cfg, heap,
        updsm::protocols::make_protocol(updsm::protocols::ProtocolKind::LmwI));
    cluster.run([&](updsm::dsm::NodeContext& ctx) {
      for (int i = 0; i < kBarriersPerRun; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBarriersPerRun);
}
BENCHMARK(BM_ClusterBarrierArrival)
    ->Args({8, 0})->Args({8, 4})
    ->Args({64, 0})->Args({64, 4})
    ->Args({256, 0})->Args({256, 4});

/// Iteration over the multi-word copyset bitmap at 1024-node width: the
/// update protocols walk every page's copyset at every barrier, so
/// for_each over mostly-empty and fully-populated words is hot.
/// Arg: member count spread evenly across the 1024-node id space.
void BM_CopysetIterate(benchmark::State& state) {
  const auto members = static_cast<std::uint32_t>(state.range(0));
  updsm::dsm::Copyset cs;
  const std::uint32_t stride = updsm::dsm::kMaxNodes / members;
  for (std::uint32_t i = 0; i < members; ++i) {
    cs.add(updsm::NodeId{i * stride});
  }
  for (auto _ : state) {
    const updsm::dsm::NodeSet snap = cs.snapshot();
    std::uint64_t sum = 0;
    snap.for_each([&](updsm::NodeId id) { sum += id.value(); });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          members);
}
BENCHMARK(BM_CopysetIterate)->Arg(2)->Arg(64)->Arg(1024);

/// Hand-rolled wall-clock summary of diff-creation throughput, written as
/// BENCH_diff.json next to the binary's working directory. Deliberately
/// independent of google-benchmark so regression tooling can parse one
/// stable, minimal format.
void write_diff_summary(const char* path) {
  constexpr std::size_t kPage = 8192;
  const auto twin = make_page(kPage, 1);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // Uniform host-provenance keys (host_cores / workers / gang /
  // net_profile / cost_overrides) that every BENCH_*.json carries; diff
  // creation is single-threaded host work, so workers is 1, no gang is
  // involved, and the simulated cost profile cannot matter -- sp2 is the
  // recorded default.
  std::fprintf(f,
               "{\n  \"bench\": \"diff_create\",\n  \"page_bytes\": %zu,\n"
               "  \"host_cores\": %u,\n  \"workers\": 1,\n"
               "  \"gang\": \"none\",\n  \"net_profile\": \"sp2\",\n"
               "  \"cost_overrides\": [],\n  \"results\": [\n",
               kPage, std::thread::hardware_concurrency());
  const char* patterns[] = {"identical", "sparse", "alternating", "dense"};
  bool first = true;
  for (const char* pattern : patterns) {
    const auto cur = make_current(twin, pattern);
    using clock = std::chrono::steady_clock;
    // Calibrate the iteration count to ~100ms, then measure.
    std::size_t iters = 64;
    for (;;) {
      const auto t0 = clock::now();
      Diff scratch;
      for (std::size_t i = 0; i < iters; ++i) {
        Diff::create_into(scratch, twin, cur);
        benchmark::DoNotOptimize(scratch.payload_bytes());
      }
      const double sec =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (sec >= 0.1 || iters >= (1u << 24)) {
        const double ns_per_page = sec * 1e9 / static_cast<double>(iters);
        const double gib_per_s =
            static_cast<double>(iters) * static_cast<double>(kPage) /
            (sec * 1024.0 * 1024.0 * 1024.0);
        std::fprintf(f,
                     "%s    {\"pattern\": \"%s\", \"ns_per_page\": %.1f, "
                     "\"gib_per_s\": %.3f}",
                     first ? "" : ",\n", pattern, ns_per_page, gib_per_s);
        first = false;
        break;
      }
      iters *= 4;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Wall-clock of a fig2-style workload (sor + barnes under bar-u) in each
/// gang mode at 2/4/8 nodes, written as BENCH_gang.json. The parallel gang
/// can only beat the baton when the host has cores to spread the node
/// threads over, so the host core count is recorded alongside the ratios:
/// on >= 4 cores the 8-node ratio is the headline number (target >= 2x); on
/// fewer cores a ratio near (or below) 1x is the expected, honest result.
void write_gang_summary(const char* path) {
  using clock = std::chrono::steady_clock;
  using updsm::sim::GangMode;

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  // Uniform host-provenance keys: this bench sweeps both gang modes, so
  // "gang" records that, and workers is the auto resolution at the largest
  // swept cluster (per-cell counts clamp to each cell's node count).
  std::fprintf(f,
               "{\n  \"bench\": \"gang_modes\",\n  \"workload\": "
               "\"sor+barnes under bar-u, scale 0.4, 4 iters\",\n"
               "  \"host_cores\": %u,\n  \"workers\": %d,\n"
               "  \"gang\": \"sweep\",\n  \"net_profile\": \"sp2\",\n"
               "  \"cost_overrides\": [],\n  \"results\": [\n",
               cores, updsm::sim::Gang::resolve_workers(0, 8));

  auto wall_ms = [](int nodes, GangMode mode) {
    updsm::apps::AppParams params;
    params.scale = 0.4;
    params.warmup_iterations = 2;
    params.measured_iterations = 4;
    updsm::dsm::ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.gang = mode;
    const auto t0 = clock::now();
    for (const char* app : {"sor", "barnes"}) {
      const auto run = updsm::harness::run_app(
          app, updsm::protocols::ProtocolKind::BarU, cfg, params);
      benchmark::DoNotOptimize(run.checksum);
    }
    return std::chrono::duration<double, std::milli>(clock::now() - t0)
        .count();
  };

  bool first = true;
  for (const int nodes : {2, 4, 8}) {
    // Warm once (first-touch page cache, pool spawn), then take the best
    // of three to damp scheduler noise.
    (void)wall_ms(nodes, GangMode::Baton);
    double baton = 1e300;
    double parallel = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      baton = std::min(baton, wall_ms(nodes, GangMode::Baton));
      parallel = std::min(parallel, wall_ms(nodes, GangMode::Parallel));
    }
    std::fprintf(f,
                 "%s    {\"nodes\": %d, \"baton_ms\": %.1f, "
                 "\"parallel_ms\": %.1f, \"speedup\": %.2f}",
                 first ? "" : ",\n", nodes, baton, parallel,
                 baton / parallel);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_diff_summary("BENCH_diff.json");
  write_gang_summary("BENCH_gang.json");
  return 0;
}
