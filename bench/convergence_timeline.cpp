// Convergence timeline: the paper's §2.2.1 claim, made visible over time.
//
// "On the first iteration of the time-step loop, the copysets of each page
// are empty, and page faults can occur. By the second iteration, copyset
// information accurately reflects stable sharing patterns." And §4/§5:
// once overdrive engages, segvs (bar-s) and mprotects (bar-m) stop.
//
// This bench runs a stencil under bar-u, bar-s and bar-m and prints, per
// time-step iteration, the remote misses, segvs and mprotects incurred in
// that iteration -- faults collapse after iteration 1-2 (copysets), trap
// traffic collapses at overdrive engagement (iteration 5 with the default
// learning depth).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "updsm/dsm/cluster.hpp"
#include "updsm/dsm/node_context.hpp"

namespace {

using namespace updsm;

struct IterationSample {
  std::uint64_t misses = 0;
  std::uint64_t segvs = 0;
  std::uint64_t mprotects = 0;
};

std::vector<IterationSample> run_timeline(protocols::ProtocolKind kind,
                                          const bench::BenchOptions& opt,
                                          int iterations) {
  dsm::ClusterConfig cfg = opt.cluster_config();
  mem::SharedHeap heap(cfg.page_size);
  const std::size_t n = 256;
  const GlobalAddr a = heap.alloc_page_aligned(n * n * 8, "grid.a");
  const GlobalAddr b = heap.alloc_page_aligned(n * n * 8, "grid.b");
  dsm::Cluster cluster(cfg, heap, protocols::make_protocol(kind));

  std::vector<IterationSample> cumulative;
  auto snapshot = [&] {
    IterationSample s;
    s.misses = cluster.runtime().counters().remote_misses;
    for (int i = 0; i < cfg.num_nodes; ++i) {
      const auto& os =
          cluster.runtime().os(NodeId{static_cast<std::uint32_t>(i)}).counters();
      s.segvs += os.segvs;
      s.mprotects += os.mprotects;
    }
    return s;
  };

  cluster.run([&](dsm::NodeContext& ctx) {
    auto ga = ctx.array<double>(a, n * n);
    auto gb = ctx.array<double>(b, n * n);
    if (ctx.node() == 0) {
      auto w = ga.write_all();
      for (std::size_t i = 0; i < n * n; ++i) {
        w[i] = static_cast<double>(i % 97);
      }
    }
    ctx.barrier();
    const std::size_t rows = (n - 2) / static_cast<std::size_t>(ctx.num_nodes());
    const std::size_t lo = 1 + rows * static_cast<std::size_t>(ctx.node());
    const std::size_t hi =
        ctx.node() + 1 == ctx.num_nodes() ? n - 1 : lo + rows;
    auto sweep = [&](dsm::SharedArray<double>& src,
                     dsm::SharedArray<double>& dst) {
      for (std::size_t r = lo; r < hi; ++r) {
        auto up = src.read_view((r - 1) * n, r * n);
        auto mid = src.read_view(r * n, (r + 1) * n);
        auto down = src.read_view((r + 1) * n, (r + 2) * n);
        auto out = dst.write_view(r * n, (r + 1) * n);
        for (std::size_t c = 1; c + 1 < n; ++c) {
          out[c] = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
        }
      }
      ctx.compute_flops((hi - lo) * n * 4);
      ctx.barrier();
    };
    for (int iter = 0; iter < iterations; ++iter) {
      ctx.iteration_begin();
      sweep(ga, gb);
      sweep(gb, ga);
      if (ctx.node() == 0) cumulative.push_back(snapshot());
    }
  });
  return cumulative;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace updsm;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  constexpr int kIterations = 10;

  std::cout << "Convergence timeline (per-iteration deltas; " << opt.nodes
            << " nodes)\n"
            << "paper: faults occur in iteration 1, copysets converge by "
               "iteration 2;\noverdrive engages after the learning "
               "iterations and removes the traps.\n\n";
  for (const auto kind :
       {protocols::ProtocolKind::BarU, protocols::ProtocolKind::BarS,
        protocols::ProtocolKind::BarM}) {
    const auto timeline = run_timeline(kind, opt, kIterations);
    harness::TextTable table({"iteration", "misses", "segvs", "mprotects"});
    IterationSample prev;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const auto& cur = timeline[i];
      table.add_row({std::to_string(i + 1),
                     std::to_string(cur.misses - prev.misses),
                     std::to_string(cur.segvs - prev.segvs),
                     std::to_string(cur.mprotects - prev.mprotects)});
      prev = cur;
    }
    std::cout << protocols::to_string(kind) << ":\n";
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
