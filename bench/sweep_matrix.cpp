// sweep_matrix: machine-readable dump of the full experiment grid.
//
// Emits one CSV row per (application, protocol) with speedup, Table-1
// counters, traffic and the Figure-3 breakdown -- the raw material for
// external plotting or regression tracking. Shares flags with the other
// benches (--nodes/--scale/--iters/--quick).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);
  cache.warm(bench::full_grid());

  std::printf(
      "app,protocol,nodes,scale,iters,seq_ms,elapsed_ms,speedup,diffs,"
      "zero_diffs,misses,messages,data_kb,updates_sent,updates_applied,"
      "migrations,private_in,private_out,app_pct,dsm_pct,os_pct,wait_pct,"
      "sigio_pct\n");
  for (const auto app : apps::app_names()) {
    for (const auto kind : protocols::all_paper_protocols()) {
      if (!bench::overdrive_safe(app) &&
          (kind == ProtocolKind::BarS || kind == ProtocolKind::BarM)) {
        continue;
      }
      cache.verify(app, kind);
      const auto& run = cache.parallel(app, kind);
      const auto& seq = cache.sequential(app);
      const auto sum = run.breakdown.summed();
      const double total = static_cast<double>(sum.total());
      std::printf(
          "%s,%s,%d,%.3f,%d,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,"
          "%llu,%llu,%llu,%llu,%.2f,%.2f,%.2f,%.2f,%.2f\n",
          run.app.c_str(), run.protocol.c_str(), run.nodes, opt.scale,
          opt.iterations, sim::to_msec(seq.elapsed),
          sim::to_msec(run.elapsed), harness::speedup(run, seq),
          static_cast<unsigned long long>(run.counters.diffs_created),
          static_cast<unsigned long long>(run.counters.zero_diffs),
          static_cast<unsigned long long>(run.counters.remote_misses),
          static_cast<unsigned long long>(run.net.table_messages()),
          static_cast<unsigned long long>(run.net.total_bytes() / 1024),
          static_cast<unsigned long long>(run.counters.updates_sent),
          static_cast<unsigned long long>(run.counters.updates_applied),
          static_cast<unsigned long long>(run.counters.migrations),
          static_cast<unsigned long long>(run.counters.private_entries),
          static_cast<unsigned long long>(run.counters.private_exits),
          100.0 * static_cast<double>(sum.app) / total,
          100.0 * static_cast<double>(sum.dsm) / total,
          100.0 * static_cast<double>(sum.os) / total,
          100.0 * static_cast<double>(sum.wait) / total,
          100.0 * static_cast<double>(sum.sigio) / total);
    }
  }
  return 0;
}
