// A1: one binary that checks every quantitative claim of the paper's
// abstract and evaluation sections against this reproduction, printing
// paper-value vs measured-value side by side (the source of
// EXPERIMENTS.md's summary table).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);
  cache.warm(bench::full_grid());

  // Verify every run first: a claim check over wrong answers is worthless.
  for (const auto app : apps::app_names()) {
    for (const auto kind : protocols::all_paper_protocols()) {
      if (!bench::overdrive_safe(app) &&
          (kind == ProtocolKind::BarS || kind == ProtocolKind::BarM)) {
        continue;
      }
      cache.verify(app, kind);
    }
  }

  struct Claim {
    std::string description;
    double paper;
    double measured;
  };
  std::vector<Claim> claims;

  const auto apps_all = apps::app_names();
  const auto n_all = static_cast<double>(apps_all.size());

  // --- Table-1 aggregates (bar-i vs lmw-i), §3.3 --------------------------
  double diffs = 0;
  double misses = 0;
  double msgs = 0;
  double data = 0;
  for (const auto app : apps_all) {
    const auto& li = cache.parallel(app, ProtocolKind::LmwI);
    const auto& bi = cache.parallel(app, ProtocolKind::BarI);
    diffs += static_cast<double>(bi.counters.diffs_created) /
             static_cast<double>(std::max<std::uint64_t>(
                 1, li.counters.diffs_created));
    misses += static_cast<double>(bi.counters.remote_misses) /
              static_cast<double>(std::max<std::uint64_t>(
                  1, li.counters.remote_misses));
    msgs += static_cast<double>(bi.net.table_messages()) /
            static_cast<double>(li.net.table_messages());
    data += static_cast<double>(bi.net.total_bytes()) /
            static_cast<double>(li.net.total_bytes());
  }
  claims.push_back({"bar-i diffs vs lmw-i (%)", -36.0,
                    100.0 * (diffs / n_all - 1.0)});
  claims.push_back({"bar-i remote misses vs lmw-i (%)", -31.0,
                    100.0 * (misses / n_all - 1.0)});
  claims.push_back({"bar-i messages vs lmw-i (%)", -49.0,
                    100.0 * (msgs / n_all - 1.0)});
  claims.push_back({"bar-i data vs lmw-i (%)", +74.0,
                    100.0 * (data / n_all - 1.0)});

  // --- speedup aggregates, §3.3 / §5.1 ------------------------------------
  double bu_vs_lmw = 0;
  for (const auto app : apps_all) {
    const double best = std::max(cache.speedup(app, ProtocolKind::LmwI),
                                 cache.speedup(app, ProtocolKind::LmwU));
    bu_vs_lmw += cache.speedup(app, ProtocolKind::BarU) / best;
  }
  claims.push_back({"bar-u speedup vs best lmw (%)", +19.0,
                    100.0 * (bu_vs_lmw / n_all - 1.0)});

  double s_vs_u = 0;
  double m_vs_u = 0;
  double m_vs_li = 0;
  double n_od = 0;
  for (const auto app : apps_all) {
    if (!bench::overdrive_safe(app)) continue;
    s_vs_u += cache.speedup(app, ProtocolKind::BarS) /
              cache.speedup(app, ProtocolKind::BarU);
    m_vs_u += cache.speedup(app, ProtocolKind::BarM) /
              cache.speedup(app, ProtocolKind::BarU);
    m_vs_li += cache.speedup(app, ProtocolKind::BarM) /
               cache.speedup(app, ProtocolKind::LmwI);
    n_od += 1.0;
  }
  claims.push_back({"bar-s speedup vs bar-u (%)", +2.0,
                    100.0 * (s_vs_u / n_od - 1.0)});
  claims.push_back({"bar-m speedup vs bar-u (%)", +34.0,
                    100.0 * (m_vs_u / n_od - 1.0)});
  claims.push_back({"overall: bar-m vs lmw-i (%)", +51.0,
                    100.0 * (m_vs_li / n_od - 1.0)});

  // --- remote-miss elimination by updates, §3.3 ----------------------------
  std::uint64_t li_miss = 0;
  std::uint64_t lu_miss = 0;
  std::uint64_t bu_miss = 0;
  for (const auto app : apps_all) {
    li_miss += cache.parallel(app, ProtocolKind::LmwI).counters.remote_misses;
    lu_miss += cache.parallel(app, ProtocolKind::LmwU).counters.remote_misses;
    bu_miss += cache.parallel(app, ProtocolKind::BarU).counters.remote_misses;
  }
  claims.push_back({"lmw-u misses / lmw-i misses (%)", 1.0,
                    100.0 * static_cast<double>(lu_miss) /
                        static_cast<double>(li_miss)});
  claims.push_back({"bar-u misses / lmw-i misses (%)", 0.0,
                    100.0 * static_cast<double>(bu_miss) /
                        static_cast<double>(li_miss)});

  std::cout << "Claim check (" << opt.nodes << " nodes, scale "
            << harness::fmt(opt.scale, 2) << ", " << opt.iterations
            << " measured iterations)\n\n";
  harness::TextTable table({"claim", "paper", "measured", "same sign/shape"});
  for (const auto& c : claims) {
    const bool same = (c.paper >= 0) == (c.measured >= 0) ||
                      std::abs(c.paper - c.measured) < 5.0;
    table.add_row({c.description, harness::fmt(c.paper, 1),
                   harness::fmt(c.measured, 1), same ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(The absolute numbers depend on the simulated platform "
               "calibration;\nthe reproduction targets sign and rough "
               "magnitude, per DESIGN.md.)\n";
  return 0;
}
