// Reproduces Figure 4, "Overdrive Speedups": best-of-lmw, bar-u, bar-s and
// bar-m for the seven applications with invariant sharing (barnes is
// excluded: its sharing pattern, although iterative, is highly dynamic --
// paper §5.1).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);

  std::vector<std::string> app_list;
  for (const auto app : apps::app_names()) {
    if (bench::overdrive_safe(app)) app_list.emplace_back(app);
  }

  std::vector<std::string> series{"lmw", "bar-u", "bar-s", "bar-m"};
  std::vector<std::vector<double>> values(4);
  for (const auto& app : app_list) {
    for (const auto kind :
         {ProtocolKind::LmwI, ProtocolKind::LmwU, ProtocolKind::BarU,
          ProtocolKind::BarS, ProtocolKind::BarM}) {
      cache.verify(app, kind);
    }
    values[0].push_back(std::max(cache.speedup(app, ProtocolKind::LmwI),
                                 cache.speedup(app, ProtocolKind::LmwU)));
    values[1].push_back(cache.speedup(app, ProtocolKind::BarU));
    values[2].push_back(cache.speedup(app, ProtocolKind::BarS));
    values[3].push_back(cache.speedup(app, ProtocolKind::BarM));
  }

  std::cout << "Figure 4: Overdrive Speedups (" << opt.nodes
            << " nodes, scale " << harness::fmt(opt.scale, 2)
            << "; barnes excluded)\n\n";
  harness::TextTable table({"app", "lmw", "bar-u", "bar-s", "bar-m"});
  for (std::size_t a = 0; a < app_list.size(); ++a) {
    table.add_row({app_list[a], harness::fmt(values[0][a]),
                   harness::fmt(values[1][a]), harness::fmt(values[2][a]),
                   harness::fmt(values[3][a])});
  }
  table.print(std::cout);
  std::cout << '\n';
  harness::print_bar_chart(std::cout, "Figure 4 (bars, max = ideal speedup)",
                           app_list, series, values,
                           static_cast<double>(opt.nodes));

  // Paper §5.1 aggregates: bar-s gains ~2% over bar-u; bar-m a further
  // ~34%; overall bar protocols ~51% over lmw-i.
  double s_gain = 0;
  double m_gain = 0;
  for (std::size_t a = 0; a < app_list.size(); ++a) {
    s_gain += values[2][a] / values[1][a];
    m_gain += values[3][a] / values[1][a];
  }
  const auto n = static_cast<double>(app_list.size());
  std::cout << "bar-s vs bar-u: " << harness::fmt(100 * (s_gain / n - 1), 1)
            << "% (paper: ~2%)\n"
            << "bar-m vs bar-u: " << harness::fmt(100 * (m_gain / n - 1), 1)
            << "% (paper: ~34%)\n";
  return 0;
}
