// Reproduces Figure 2, "8-Proc Speedups": lmw-i, lmw-u, bar-i and bar-u
// speedups over the nulled-sync sequential baseline for all eight
// applications (paper §3.3).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace updsm;
  using protocols::ProtocolKind;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::RunCache cache(opt);
  cache.warm(bench::base_grid());

  const auto protos = protocols::base_protocols();
  std::vector<std::string> app_list;
  for (const auto app : apps::app_names()) app_list.emplace_back(app);

  std::vector<std::string> series;
  std::vector<std::vector<double>> values;
  for (const auto kind : protos) {
    series.emplace_back(protocols::to_string(kind));
    std::vector<double> row;
    for (const auto app : apps::app_names()) {
      cache.verify(app, kind);
      row.push_back(cache.speedup(app, kind));
    }
    values.push_back(std::move(row));
  }

  harness::TextTable table({"app", "lmw-i", "lmw-u", "bar-i", "bar-u"});
  for (std::size_t a = 0; a < app_list.size(); ++a) {
    table.add_row({app_list[a], harness::fmt(values[0][a]),
                   harness::fmt(values[1][a]), harness::fmt(values[2][a]),
                   harness::fmt(values[3][a])});
  }
  std::cout << "Figure 2: 8-Proc Speedups (" << opt.nodes << " nodes, scale "
            << harness::fmt(opt.scale, 2) << ")\n\n";
  table.print(std::cout);
  std::cout << '\n';
  harness::print_bar_chart(std::cout, "Figure 2 (bars, max = ideal speedup)",
                           app_list, series, values,
                           static_cast<double>(opt.nodes));

  // Paper headline: bar-u averages ~19% more speedup than the better of
  // the two lmw protocols.
  double gain = 0;
  for (const auto app : apps::app_names()) {
    const double best_lmw = std::max(cache.speedup(app, ProtocolKind::LmwI),
                                     cache.speedup(app, ProtocolKind::LmwU));
    gain += cache.speedup(app, ProtocolKind::BarU) / best_lmw;
  }
  gain = gain / static_cast<double>(app_list.size()) - 1.0;
  std::cout << "bar-u vs best(lmw): " << harness::fmt(100 * gain, 1)
            << "% average speedup gain (paper: ~19%)\n";
  return 0;
}
