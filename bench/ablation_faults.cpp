// X6: protocol degradation under an adversarial transport. Sweeps the
// fault plan's reliable-channel drop rate over {0, 1, 5, 10}% for all six
// paper protocols on jacobi (stencil), tomcat (irregular mesh) and fft
// (all-to-all), verifying bit-exactness against the fault-free sequential
// baseline at every point and reporting runtime + message overhead curves.
// Emits BENCH_faults.json for perf-trajectory tracking.
//
// Deterministic by construction: virtual-time results depend only on
// (workload, config, --fault-seed), never on --jobs or wall clock; the
// bench_faults_determinism ctest pins byte-identical output.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace updsm;

constexpr double kDropRates[] = {0.0, 0.01, 0.05, 0.1};
constexpr const char* kApps[] = {"jacobi", "tomcat", "fft"};

struct Cell {
  std::string app;
  protocols::ProtocolKind kind;
  double drop_rate;
};

}  // namespace

int main(int argc, char** argv) {
  using protocols::ProtocolKind;

  // --fault-seed is this bench's own knob; everything else is shared.
  std::uint64_t fault_seed = 42;
  std::vector<char*> passthrough{argv, argv + 1};
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kPrefix = "--fault-seed=";
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      fault_seed = std::strtoull(argv[i] + std::strlen(kPrefix), nullptr, 0);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  auto opt = bench::BenchOptions::parse(static_cast<int>(passthrough.size()),
                                        passthrough.data());
  if (opt.scale == 1.0) opt.scale = 0.4;  // curves need 72 runs; keep it snappy

  // Plan every run up front and execute on the --jobs worker pool; results
  // land in task order, so output is identical at any worker count.
  std::vector<Cell> cells;
  std::vector<std::function<harness::RunResult()>> tasks;
  std::vector<std::string> seq_apps;
  for (const char* app : kApps) {
    const bench::BenchOptions o = opt;
    tasks.push_back([o, app = std::string(app)] {
      return harness::run_sequential(app, o.cluster_config(), o.app_params());
    });
    seq_apps.push_back(app);
    for (const ProtocolKind kind : protocols::all_paper_protocols()) {
      if (!bench::overdrive_safe(app) &&
          (kind == ProtocolKind::BarS || kind == ProtocolKind::BarM)) {
        continue;
      }
      for (const double rate : kDropRates) {
        cells.push_back(Cell{app, kind, rate});
        tasks.push_back([o, app = std::string(app), kind, rate, fault_seed] {
          dsm::ClusterConfig cfg = o.cluster_config();
          if (rate > 0) {
            char spec[32];
            std::snprintf(spec, sizeof(spec), "drop=%g", rate);
            cfg.faults = sim::FaultSpec::parse(spec);
            cfg.fault_seed = fault_seed;
          }
          return harness::run_app(app, kind, cfg, o.app_params());
        });
      }
    }
  }
  const std::vector<harness::RunResult> results =
      harness::run_grid(tasks, opt.jobs);

  // Task order: [seq(app0), cells(app0)..., seq(app1), ...].
  std::size_t next = 0;
  std::vector<harness::RunResult> seq_results;
  std::vector<harness::RunResult> cell_results;
  std::size_t cell_idx = 0;
  for (std::size_t a = 0; a < seq_apps.size(); ++a) {
    seq_results.push_back(results[next++]);
    while (cell_idx < cells.size() && cells[cell_idx].app == seq_apps[a]) {
      cell_results.push_back(results[next++]);
      ++cell_idx;
    }
  }

  auto seq_of = [&](const std::string& app) -> const harness::RunResult& {
    for (std::size_t a = 0; a < seq_apps.size(); ++a) {
      if (seq_apps[a] == app) return seq_results[a];
    }
    std::fprintf(stderr, "FATAL: no sequential baseline for %s\n",
                 app.c_str());
    std::exit(1);
  };

  std::printf("Ablation X6: degradation vs reliable-channel drop rate "
              "(fault seed %llu, scale %.2f)\n\n",
              static_cast<unsigned long long>(fault_seed), opt.scale);

  std::FILE* json = std::fopen("BENCH_faults.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fault_injection\",\n"
               "  \"fault_seed\": %llu,\n  \"scale\": %.3f,\n"
               "  \"nodes\": %d,\n",
               static_cast<unsigned long long>(fault_seed), opt.scale,
               opt.nodes);
  bench::write_host_env_json(json, opt);
  std::fprintf(json,
               "  \"drop_rates\": [0, 0.01, 0.05, 0.1],\n"
               "  \"runs\": [");

  bool first_json = true;
  std::string cur_header;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::RunResult& run = cell_results[i];
    const harness::RunResult& seq = seq_of(cell.app);
    if (run.checksum != seq.checksum) {
      std::fprintf(stderr,
                   "FATAL: %s under %s diverged at drop rate %g\n",
                   cell.app.c_str(), protocols::to_string(cell.kind),
                   cell.drop_rate);
      return 1;
    }
    const std::string header =
        cell.app + " under " + protocols::to_string(cell.kind);
    if (header != cur_header) {
      cur_header = header;
      std::printf("%s:\n  %-6s %10s %9s %9s %8s %8s %8s %9s\n",
                  header.c_str(), "drop", "elapsed", "overhead", "messages",
                  "dropped", "retries", "dups", "recovery");
    }
    // Overhead: runtime vs this protocol's own fault-free point (printed
    // right above, always rate 0.0 of the same (app, kind) group).
    const harness::RunResult& base =
        cell_results[i - (i % (sizeof(kDropRates) / sizeof(kDropRates[0])))];
    const double overhead = static_cast<double>(run.elapsed) /
                            static_cast<double>(base.elapsed);
    std::printf("  %-6g %8.2fms %8.3fx %9llu %8llu %8llu %8llu %9llu\n",
                cell.drop_rate, sim::to_msec(run.elapsed), overhead,
                static_cast<unsigned long long>(run.net.table_messages()),
                static_cast<unsigned long long>(run.net.total_dropped()),
                static_cast<unsigned long long>(
                    run.counters.reliable_retries),
                static_cast<unsigned long long>(run.counters.dup_suppressed),
                static_cast<unsigned long long>(
                    run.counters.recovery_faults));
    if (cell.drop_rate == kDropRates[sizeof(kDropRates) /
                                     sizeof(kDropRates[0]) - 1]) {
      std::printf("\n");
    }

    std::fprintf(json,
                 "%s\n    {\"app\": \"%s\", \"protocol\": \"%s\", "
                 "\"drop_rate\": %g, \"elapsed_ms\": %.3f, "
                 "\"runtime_overhead\": %.4f, \"messages\": %llu, "
                 "\"data_kb\": %llu, \"dropped\": %llu, \"retries\": %llu, "
                 "\"dups_suppressed\": %llu, \"recovery_faults\": %llu, "
                 "\"correct\": true}",
                 first_json ? "" : ",", cell.app.c_str(),
                 protocols::to_string(cell.kind), cell.drop_rate,
                 sim::to_msec(run.elapsed), overhead,
                 static_cast<unsigned long long>(run.net.table_messages()),
                 static_cast<unsigned long long>(run.net.total_bytes() /
                                                 1024),
                 static_cast<unsigned long long>(run.net.total_dropped()),
                 static_cast<unsigned long long>(
                     run.counters.reliable_retries),
                 static_cast<unsigned long long>(run.counters.dup_suppressed),
                 static_cast<unsigned long long>(
                     run.counters.recovery_faults));
    first_json = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_faults.json (%zu runs, all bit-exact vs "
              "sequential)\n",
              cells.size());
  return 0;
}
