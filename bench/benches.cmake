# One binary per paper table/figure plus ablations; all runnable without
# arguments ("for b in build/bench/*; do $b; done") with paper-scale
# defaults, each accepting --nodes/--scale/--iters/--quick.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains ONLY the bench binaries: the canonical run loop is
#   for b in build/bench/*; do $b; done
function(updsm_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE updsm::harness updsm::apps updsm::protocols)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

updsm_add_bench(table1_base_stats)
updsm_add_bench(fig2_speedups)
updsm_add_bench(fig3_breakdown)
updsm_add_bench(fig4_overdrive)
updsm_add_bench(claims_summary)
updsm_add_bench(ablation_os_stress)
updsm_add_bench(ablation_page_size)
updsm_add_bench(ablation_nodes)
updsm_add_bench(ablation_migration)
updsm_add_bench(ablation_faults)
updsm_add_bench(ablation_aggregation)
updsm_add_bench(ablation_profiles)
updsm_add_bench(ablation_async)

add_executable(micro_primitives ${CMAKE_SOURCE_DIR}/bench/micro_primitives.cpp)
target_link_libraries(micro_primitives PRIVATE
  updsm::mem updsm::sim updsm::dsm updsm::harness updsm::apps
  updsm::protocols benchmark::benchmark)
set_target_properties(micro_primitives PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
updsm_add_bench(sweep_matrix)
updsm_add_bench(convergence_timeline)
updsm_add_bench(wallclock_scaling)
